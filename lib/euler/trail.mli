(** Euler trails and minimal trail decompositions.

    A diffusion strip realizes one open trail; a graph with [2k] odd-degree
    nodes ([k >= 1]) needs exactly [k] trails, and each break between
    consecutive trails costs one duplicated metal contact in the layout.
    The paper's compact layouts are obtained by walking an Euler path "from
    Vdd to Gnd"; {!decompose} generalizes this to any gate function. *)

type step = { node : int; via : int option }
(** A trail is a node sequence; [via] is the edge id taken to arrive at
    [node] ([None] for the first step). *)

type trail = step list

val nodes_of : trail -> int list
val edges_of : trail -> int list

val euler_trail : 'a Multigraph.t -> start:int -> (trail, string) result
(** Hierholzer's algorithm.  Succeeds when the graph is edge-connected and
    has zero or two odd nodes, with [start] being an odd node when two
    exist.  The trail covers every edge exactly once. *)

val decompose : 'a Multigraph.t -> prefer_start:int list -> trail list
(** Minimal open-trail decomposition: [max 1 (odd/2)] trails covering every
    edge exactly once (per edge-connected component; components yield
    additional trails).  [prefer_start] biases which odd (or any) node each
    trail starts from — the layout generator passes power nodes first so
    strips begin at Vdd/Gnd rails when possible. *)

val cost : trail list -> int
(** Number of contact stripes the trails need in a linear strip layout:
    [edges + 1 + breaks] where [breaks = trails - 1]. *)
