(** Undirected multigraphs with integer nodes and labelled edges.

    The layout problem of the paper treats metal contacts as nodes and
    transistor gates as edges: a diffusion strip is a walk, and a layout
    without etched regions exists iff the graph decomposes into few open
    trails (each extra trail duplicates one contact). *)

type 'a t

type 'a edge = { id : int; u : int; v : int; label : 'a }

val create : nodes:int -> 'a t
(** Graph over nodes [0 .. nodes-1] and no edges. *)

val node_count : 'a t -> int
val edge_count : 'a t -> int

val add_edge : 'a t -> u:int -> v:int -> 'a -> int
(** Add an undirected edge (self-loops allowed); returns its id. *)

val edge : 'a t -> int -> 'a edge
val edges : 'a t -> 'a edge list
val degree : 'a t -> int -> int
val incident : 'a t -> int -> 'a edge list

val odd_nodes : 'a t -> int list
(** Nodes of odd degree, ascending. *)

val connected_components : 'a t -> int list list
(** Components as node lists; isolated nodes (degree 0) form their own
    singleton components. *)

val is_edge_connected : 'a t -> bool
(** All edges lie in one component (isolated nodes ignored); vacuously true
    without edges. *)
