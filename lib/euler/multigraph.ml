type 'a edge = { id : int; u : int; v : int; label : 'a }

type 'a t = {
  nodes : int;
  mutable edges_rev : 'a edge list;
  mutable n_edges : int;
}

let create ~nodes =
  if nodes < 0 then invalid_arg "Multigraph.create";
  { nodes; edges_rev = []; n_edges = 0 }

let node_count t = t.nodes
let edge_count t = t.n_edges

let add_edge t ~u ~v label =
  if u < 0 || u >= t.nodes || v < 0 || v >= t.nodes then
    invalid_arg "Multigraph.add_edge: node out of range";
  let id = t.n_edges in
  t.edges_rev <- { id; u; v; label } :: t.edges_rev;
  t.n_edges <- id + 1;
  id

let edges t = List.rev t.edges_rev

let edge t id =
  match List.find_opt (fun e -> e.id = id) t.edges_rev with
  | Some e -> e
  | None -> invalid_arg "Multigraph.edge: unknown id"

let degree t n =
  List.fold_left
    (fun acc e ->
      acc + (if e.u = n then 1 else 0) + if e.v = n then 1 else 0)
    0 t.edges_rev

let incident t n =
  List.filter (fun e -> e.u = n || e.v = n) (edges t)

let odd_nodes t =
  List.init t.nodes Fun.id |> List.filter (fun n -> degree t n mod 2 = 1)

let connected_components t =
  let parent = Array.init t.nodes Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter (fun e -> union e.u e.v) t.edges_rev;
  let buckets = Hashtbl.create 8 in
  for n = t.nodes - 1 downto 0 do
    let r = find n in
    let prev = try Hashtbl.find buckets r with Not_found -> [] in
    Hashtbl.replace buckets r (n :: prev)
  done;
  Hashtbl.fold (fun _ ns acc -> ns :: acc) buckets []
  |> List.sort Stdlib.compare

let is_edge_connected t =
  let with_edges =
    connected_components t
    |> List.filter (fun ns -> List.exists (fun n -> degree t n > 0) ns)
  in
  List.length with_edges <= 1
