type terminal = Power | Output | Junction of int

type t = {
  graph : string Multigraph.t;
  labels : terminal array;
  power : int;
  output : int;
}

(* Expansion parallels Logic.Switch_graph.add_network: series chains of
   plain devices become junction-separated edges; here every device is its
   own edge because each gate is one stripe of the strip. *)
let of_network net =
  (* First pass: count internal junction nodes needed. *)
  let rec count_junctions = function
    | Logic.Network.Device _ -> 0
    | Logic.Network.Parallel ns ->
      List.fold_left (fun a n -> a + count_junctions n) 0 ns
    | Logic.Network.Series ns ->
      List.length ns - 1
      + List.fold_left (fun a n -> a + count_junctions n) 0 ns
  in
  let n_junctions = count_junctions net in
  let total = 2 + n_junctions in
  let graph = Multigraph.create ~nodes:total in
  let labels = Array.make total Power in
  labels.(1) <- Output;
  let next = ref 2 in
  let fresh () =
    let id = !next in
    incr next;
    labels.(id) <- Junction (id - 2);
    id
  in
  let rec expand ~src ~dst = function
    | Logic.Network.Device g -> ignore (Multigraph.add_edge graph ~u:src ~v:dst g)
    | Logic.Network.Parallel ns ->
      List.iter (fun n -> expand ~src ~dst n) ns
    | Logic.Network.Series ns ->
      let rec chain src = function
        | [] -> ()
        | [ last ] -> expand ~src ~dst last
        | n :: rest ->
          let mid = fresh () in
          expand ~src ~dst:mid n;
          chain mid rest
      in
      chain src ns
  in
  expand ~src:0 ~dst:1 net;
  { graph; labels; power = 0; output = 1 }

let strips t =
  Trail.decompose t.graph ~prefer_start:[ t.power; t.output ]

let contact_count t =
  let trails = strips t in
  Multigraph.edge_count t.graph + List.length trails

let gate_sequence t trail =
  Trail.edges_of trail
  |> List.map (fun id -> (Multigraph.edge t.graph id).Multigraph.label)

let terminal_of_node t n = t.labels.(n)
