type step = { node : int; via : int option }
type trail = step list

let nodes_of t = List.map (fun s -> s.node) t
let edges_of t = List.filter_map (fun s -> s.via) t

(* Adjacency view: per node, mutable list of (other endpoint, edge id).
   Edge ids >= [virtual_from] are virtual pairing edges (see [decompose]). *)
type adj = { nbrs : (int * int) list array; used : bool array }

let adj_of_edges ~nodes edge_list =
  let nbrs = Array.make nodes [] in
  let max_id =
    List.fold_left (fun m (id, _, _) -> max m id) (-1) edge_list
  in
  let used = Array.make (max_id + 1) false in
  List.iter
    (fun (id, u, v) ->
      nbrs.(u) <- (v, id) :: nbrs.(u);
      if u <> v then nbrs.(v) <- (u, id) :: nbrs.(v))
    edge_list;
  { nbrs; used }

(* Post-order Hierholzer: collects the edge ids of an Euler trail from
   [start] in reverse order. *)
let hierholzer_edges adj start =
  let out = ref [] in
  let rec dfs v =
    let rec take () =
      match
        List.find_opt (fun (_, id) -> not adj.used.(id)) adj.nbrs.(v)
      with
      | None -> ()
      | Some (u, id) ->
        adj.used.(id) <- true;
        dfs u;
        out := id :: !out;
        take ()
    in
    take ()
  in
  dfs start;
  !out

(* Reconstruct the node sequence by walking the edge list from [start]. *)
let walk ~endpoints start edge_ids =
  let rec go node acc = function
    | [] -> List.rev acc
    | id :: rest ->
      let u, v = endpoints id in
      let next = if u = node then v else u in
      go next ({ node = next; via = Some id } :: acc) rest
  in
  go start [ { node = start; via = None } ] edge_ids

let euler_trail g ~start =
  let nodes = Multigraph.node_count g in
  if start < 0 || start >= nodes then Error "start node out of range"
  else if not (Multigraph.is_edge_connected g) then
    Error "graph is not edge-connected"
  else
    let odd = Multigraph.odd_nodes g in
    match odd with
    | [] | [ _; _ ] ->
      if odd <> [] && not (List.mem start odd) then
        Error "start must be an odd-degree node"
      else if Multigraph.edge_count g = 0 then Ok [ { node = start; via = None } ]
      else if Multigraph.degree g start = 0 then
        Error "start node has no incident edge"
      else begin
        let edge_list =
          List.map
            (fun (e : _ Multigraph.edge) -> (e.id, e.u, e.v))
            (Multigraph.edges g)
        in
        let adj = adj_of_edges ~nodes edge_list in
        let ids = hierholzer_edges adj start in
        if List.length ids <> Multigraph.edge_count g then
          Error "internal: trail does not cover all edges"
        else
          let endpoints id =
            let e = Multigraph.edge g id in
            (e.u, e.v)
          in
          Ok (walk ~endpoints start ids)
      end
    | _ -> Error "more than two odd-degree nodes"

(* Pick the most preferred element of [candidates]; falls back to the list
   head when no preference matches. *)
let pick_preferred prefer candidates =
  let rec go = function
    | [] -> (match candidates with c :: _ -> c | [] -> invalid_arg "pick")
    | p :: rest -> if List.mem p candidates then p else go rest
  in
  go prefer

let decompose g ~prefer_start =
  let nodes = Multigraph.node_count g in
  let components =
    Multigraph.connected_components g
    |> List.filter (fun ns ->
           List.exists (fun n -> Multigraph.degree g n > 0) ns)
  in
  let virtual_from = Multigraph.edge_count g in
  let all_trails =
    List.concat_map
      (fun comp ->
        let comp_edges =
          Multigraph.edges g
          |> List.filter (fun (e : _ Multigraph.edge) -> List.mem e.u comp)
          |> List.map (fun (e : _ Multigraph.edge) -> (e.id, e.u, e.v))
        in
        let odd =
          List.filter (fun n -> Multigraph.degree g n mod 2 = 1) comp
        in
        let start, virtuals =
          match odd with
          | [] -> (pick_preferred prefer_start comp, [])
          | [ a; b ] -> (pick_preferred prefer_start [ a; b ], [])
          | _ ->
            let start = pick_preferred prefer_start odd in
            let rest = List.filter (fun n -> n <> start) odd in
            (* keep the most preferred of the rest as the other endpoint *)
            let fin = pick_preferred prefer_start rest in
            let middle = List.filter (fun n -> n <> fin) rest in
            let rec pair k = function
              | a :: b :: more ->
                (virtual_from + k, a, b) :: pair (k + 1) more
              | [] -> []
              | [ _ ] -> assert false
            in
            (start, pair 0 middle)
        in
        let adj = adj_of_edges ~nodes (comp_edges @ virtuals) in
        let ids = hierholzer_edges adj start in
        let endpoints id =
          match List.find_opt (fun (i, _, _) -> i = id) (comp_edges @ virtuals) with
          | Some (_, u, v) -> (u, v)
          | None -> assert false
        in
        let full = walk ~endpoints start ids in
        (* split at virtual edges *)
        let rec split acc cur = function
          | [] -> List.rev (List.rev cur :: acc)
          | s :: rest -> (
            match s.via with
            | Some id when id >= virtual_from ->
              split (List.rev cur :: acc) [ { s with via = None } ] rest
            | _ -> split acc (s :: cur) rest)
        in
        match full with
        | [] -> []
        | first :: rest -> split [] [ first ] rest)
      components
  in
  if all_trails = [] then [] else all_trails

let cost trails =
  List.fold_left (fun acc t -> acc + List.length (edges_of t) + 1) 0 trails
