type violation = {
  rule : string;
  detail : string;
  where : Geom.Rect.t;
}

let v rule detail where = { rule; detail; where }

let elem_name = function
  | Fabric.Contact _ -> "contact"
  | Fabric.Gate g -> "gate " ^ g
  | Fabric.Etch -> "etch"

(* Minimum dimensions per element kind.  Etched regions only need their
   lithography minimum along one axis (they are isolation strips). *)
let width_rules (r : Pdk.Rules.t) (p : Fabric.placed) =
  let w = Geom.Rect.width p.Fabric.rect
  and h = Geom.Rect.height p.Fabric.rect in
  match p.Fabric.elem with
  | Fabric.Gate _ ->
    (if w < r.Pdk.Rules.gate_len then
       [ v "gate.width"
           (Printf.sprintf "gate width %d < Lg %d" w r.Pdk.Rules.gate_len)
           p.Fabric.rect ]
     else [])
    @
    if h < r.Pdk.Rules.min_width then
      [ v "gate.height"
          (Printf.sprintf "transistor width %d < minimum %d" h
             r.Pdk.Rules.min_width)
          p.Fabric.rect ]
    else []
  | Fabric.Contact _ ->
    if w < r.Pdk.Rules.contact_len then
      [ v "contact.width"
          (Printf.sprintf "contact width %d < Lc %d" w r.Pdk.Rules.contact_len)
          p.Fabric.rect ]
    else []
  | Fabric.Etch -> []  (* checked on merged etch components, see below *)

(* Distinct conducting elements must not overlap; gate-to-contact pairs
   must keep the Lgs spacing along x. *)
let pair_rules (r : Pdk.Rules.t) a b =
  let ra = a.Fabric.rect and rb = b.Fabric.rect in
  if Geom.Rect.intersects ra rb then
    match (a.Fabric.elem, b.Fabric.elem) with
    | Fabric.Etch, _ | _, Fabric.Etch -> []  (* etch may abut anything *)
    | _ ->
      [ v "overlap"
          (Printf.sprintf "%s overlaps %s" (elem_name a.Fabric.elem)
             (elem_name b.Fabric.elem))
          ra ]
  else
    match (a.Fabric.elem, b.Fabric.elem) with
    | Fabric.Gate _, Fabric.Contact _ | Fabric.Contact _, Fabric.Gate _ ->
      (* spacing applies only when they share a row band *)
      let y_overlap =
        ra.Geom.Rect.y0 < rb.Geom.Rect.y1 && rb.Geom.Rect.y0 < ra.Geom.Rect.y1
      in
      let dx =
        max 0
          (max
             (rb.Geom.Rect.x0 - ra.Geom.Rect.x1)
             (ra.Geom.Rect.x0 - rb.Geom.Rect.x1))
      in
      let x_disjoint =
        ra.Geom.Rect.x1 <= rb.Geom.Rect.x0 || rb.Geom.Rect.x1 <= ra.Geom.Rect.x0
      in
      if y_overlap && x_disjoint && dx < r.Pdk.Rules.gate_contact_sp then
        [ v "gate_contact.spacing"
            (Printf.sprintf "spacing %d < Lgs %d" dx r.Pdk.Rules.gate_contact_sp)
            ra ]
      else []
    | _ -> []

(* Etched regions are drawn as rectangle tilings; the lithography minimum
   applies to each *merged* connected component, not to the tiles.
   Touching tiles are found through the spatial index — the closed
   intersection of [query_rect] is exactly the merge criterion — so the
   union pass is near-linear instead of all-pairs. *)
let etch_rules (r : Pdk.Rules.t) (f : Fabric.t) =
  let etches = Fabric.etches f in
  let n = List.length etches in
  if n = 0 then []
  else begin
    let arr = Array.of_list etches in
    let index = Geom.Index.build (List.mapi (fun i e -> (e, i)) etches) in
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    for i = 0 to n - 1 do
      List.iter
        (fun (_, j) ->
          if j > i then begin
            let ri = find i and rj = find j in
            if ri <> rj then parent.(ri) <- rj
          end)
        (Geom.Index.query_rect index arr.(i))
    done;
    let components = Hashtbl.create 8 in
    for i = 0 to n - 1 do
      let root = find i in
      let prev =
        try Hashtbl.find components root with Not_found -> Geom.Rect.empty
      in
      Hashtbl.replace components root (Geom.Rect.union_bbox prev arr.(i))
    done;
    Hashtbl.fold
      (fun _ bbox acc ->
        let w = Geom.Rect.width bbox and h = Geom.Rect.height bbox in
        if min w h < r.Pdk.Rules.etch_len then
          v "etch.size"
            (Printf.sprintf "merged etched region %dx%d below lithography %d"
               w h r.Pdk.Rules.etch_len)
            bbox
          :: acc
        else acc)
      components []
  end

(* Violations-by-rule counters: each violation bumps its rule's counter,
   so a telemetry summary shows which rules fire across a whole run. *)
let tally vs =
  if Telemetry.enabled () then
    List.iter (fun t -> Telemetry.counter_add ("drc.violations." ^ t.rule) 1) vs;
  vs

(* Pairwise rules fire only for overlapping items or gate/contact pairs
   closer than Lgs, so each item needs to see just the neighbors inside an
   Lgs-inflated window around it.  Candidates come back from the index in
   item order and are filtered to [j > i], which reproduces the (i, j)
   enumeration order — and hence the violation list — of the full
   all-pairs scan exactly. *)
let pair_violations (r : Pdk.Rules.t) items =
  match items with
  | [] | [ _ ] -> []
  | _ ->
    let arr = Array.of_list items in
    let index =
      Geom.Index.build
        (List.mapi (fun i (p : Fabric.placed) -> (p.Fabric.rect, i)) items)
    in
    let reach = max 1 r.Pdk.Rules.gate_contact_sp in
    List.concat
      (List.mapi
         (fun i (p : Fabric.placed) ->
           Geom.Index.query_rect index (Geom.Rect.inflate reach p.Fabric.rect)
           |> List.concat_map (fun (_, j) ->
                  if j > i then pair_rules r p arr.(j) else []))
         items)

let check_fabric ~rules (f : Fabric.t) =
  let widths = List.concat_map (width_rules rules) f.Fabric.items in
  Telemetry.counter_add "drc.fabrics_checked" 1;
  tally (widths @ etch_rules rules f @ pair_violations rules f.Fabric.items)

let check_cell (c : Cell.t) =
  let rules = c.Cell.rules in
  let sep_rule =
    match c.Cell.style with
    | Cell.Cmos -> rules.Pdk.Rules.cmos_pun_pdn_sep
    | Cell.Immune_new | Cell.Immune_old | Cell.Vulnerable ->
      rules.Pdk.Rules.cnfet_pun_pdn_sep
  in
  let pun_b = c.Cell.pun.Fabric.bbox and pdn_b = c.Cell.pdn.Fabric.bbox in
  let actual_sep =
    match c.Cell.scheme with
    | Cell.Scheme1 ->
      min
        (abs (pun_b.Geom.Rect.y0 - pdn_b.Geom.Rect.y1))
        (abs (pdn_b.Geom.Rect.y0 - pun_b.Geom.Rect.y1))
    | Cell.Scheme2 ->
      min
        (abs (pun_b.Geom.Rect.x0 - pdn_b.Geom.Rect.x1))
        (abs (pdn_b.Geom.Rect.x0 - pun_b.Geom.Rect.x1))
  in
  let sep =
    if actual_sep < sep_rule then
      [ v "pun_pdn.separation"
          (Printf.sprintf "separation %d < required %d" actual_sep sep_rule)
          pun_b ]
    else []
  in
  Telemetry.counter_add "drc.cells_checked" 1;
  check_fabric ~rules c.Cell.pun @ check_fabric ~rules c.Cell.pdn @ tally sep

(* Placement-level rule: distinct cell outlines must not overlap.  The
   index makes this near-linear in the instance count, which is what lets
   full-die DRC run at 10k+ instances; [check_outlines_naive] is the
   all-pairs reference the scale bench and tests compare against. *)
let outline_pair a_name (a : Geom.Rect.t) b_name (b : Geom.Rect.t) =
  if Geom.Rect.intersects a b then
    [ v "placement.overlap"
        (Printf.sprintf "cell %s overlaps cell %s" a_name b_name)
        a ]
  else []

let check_outlines outlines =
  Telemetry.counter_add "drc.placements_checked" 1;
  match outlines with
  | [] | [ _ ] -> tally []
  | _ ->
    let arr = Array.of_list outlines in
    let index =
      Geom.Index.build (List.mapi (fun i (_, r) -> (r, i)) outlines)
    in
    tally
      (List.concat
         (List.mapi
            (fun i (name, r) ->
              Geom.Index.query_rect index r
              |> List.concat_map (fun (_, j) ->
                     if j > i then
                       let bn, br = arr.(j) in
                       outline_pair name r bn br
                     else []))
            outlines))

let check_outlines_naive outlines =
  let rec pairs acc = function
    | [] -> acc
    | (name, r) :: rest ->
      pairs
        (acc
        @ List.concat_map (fun (bn, br) -> outline_pair name r bn br) rest)
        rest
  in
  pairs [] outlines

let pp_violation ppf t =
  Format.fprintf ppf "%s: %s at %a" t.rule t.detail Geom.Rect.pp t.where
