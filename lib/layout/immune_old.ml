type isolation = Etched | Bare

type block = {
  width : int;
  height : int;
  items : Fabric.placed list;
  rows : Geom.Rect.t list;
  enclosed_gates : int;  (** gates needing vertical-gating vias *)
}

let translate_block ~dx ~dy b =
  {
    b with
    items =
      List.map
        (fun (p : Fabric.placed) ->
          { p with Fabric.rect = Geom.Rect.translate ~dx ~dy p.Fabric.rect })
        b.items;
    rows = List.map (Geom.Rect.translate ~dx ~dy) b.rows;
  }

let is_parallel = function
  | Logic.Network.Parallel _ -> true
  | Logic.Network.Device _ | Logic.Network.Series _ -> false

let device_width widths g =
  match List.assoc_opt g widths with Some w -> w | None -> 3

(* Extend rows that touch the block's x-boundary so they reach an adjacent
   contact column (nominal CNTs must land on the contacts). *)
let extend_rows_left ~to_x rows ~boundary =
  List.map
    (fun (r : Geom.Rect.t) ->
      if r.Geom.Rect.x0 = boundary then
        Geom.Rect.make ~x0:to_x ~y0:r.Geom.Rect.y0 ~x1:r.Geom.Rect.x1
          ~y1:r.Geom.Rect.y1
      else r)
    rows

let extend_rows_right ~to_x rows ~boundary =
  List.map
    (fun (r : Geom.Rect.t) ->
      if r.Geom.Rect.x1 = boundary then
        Geom.Rect.make ~x0:r.Geom.Rect.x0 ~y0:r.Geom.Rect.y0 ~x1:to_x
          ~y1:r.Geom.Rect.y1
      else r)
    rows

let rec count_gates = function
  | Logic.Network.Device _ -> 1
  | Logic.Network.Series ns | Logic.Network.Parallel ns ->
    List.fold_left (fun a n -> a + count_gates n) 0 ns

let strip_unsafe ~rules ~polarity ~widths ~isolation net =
  let r : Pdk.Rules.t = rules in
  let sp = r.Pdk.Rules.gate_contact_sp in
  let lc = r.Pdk.Rules.contact_len in
  let next_junction = ref 0 in
  let fresh_junction () =
    let i = !next_junction in
    incr next_junction;
    Logic.Switch_graph.Internal i
  in
  let rec build = function
    | Logic.Network.Device g ->
      let h = max r.Pdk.Rules.min_width (device_width widths g) in
      let rect = Geom.Rect.of_size ~x:0 ~y:0 ~w:r.Pdk.Rules.gate_len ~h in
      {
        width = r.Pdk.Rules.gate_len;
        height = h;
        items = [ { Fabric.rect; elem = Fabric.Gate g } ];
        rows = [ rect ];
        enclosed_gates = 0;
      }
    | Logic.Network.Series ns -> series (List.map (fun n -> (n, build n)) ns)
    | Logic.Network.Parallel ns ->
      parallel (List.map (fun n -> (n, build n)) ns)
  (* Series: children side by side; a contact column separates a parallel
     block from its neighbour, plain devices share bare diffusion.  Rows of
     runs of bare-shared devices are merged into one segment row. *)
  and series children =
    let rec place x acc_items acc_rows enclosed prev = function
      | [] -> (x - sp, acc_items, acc_rows, enclosed)
      | (net, b) :: rest ->
        let x, acc_items, acc_rows =
          match prev with
          | None -> (x, acc_items, acc_rows)
          | Some (pnet, pb, px1) ->
            if is_parallel pnet || is_parallel net then begin
              (* junction contact column between the two children *)
              let h = max pb.height b.height in
              let c =
                Geom.Rect.of_size ~x ~y:0 ~w:lc ~h
              in
              let node = fresh_junction () in
              let acc_rows =
                extend_rows_right ~to_x:(x + lc) acc_rows ~boundary:px1
              in
              ( x + lc + sp,
                { Fabric.rect = c; elem = Fabric.Contact node } :: acc_items,
                acc_rows )
            end
            else (x, acc_items, acc_rows)
        in
        let placed = translate_block ~dx:x ~dy:0 b in
        let rows =
          match prev with
          | Some (pnet, _, _) when not (is_parallel pnet || is_parallel net) ->
            (* merge the segment row across the bare junction *)
            merge_boundary_rows acc_rows placed.rows ~left_x:x
          | Some _ | None -> acc_rows @ placed.rows
        in
        let rows' =
          (* rows entering this child from a contact: extend left *)
          match prev with
          | Some (pnet, _, _) when is_parallel pnet || is_parallel net ->
            extend_rows_left ~to_x:(x - sp - lc) rows ~boundary:x
          | Some _ | None -> rows
        in
        place (x + b.width + sp) (acc_items @ placed.items) rows'
          (enclosed + b.enclosed_gates)
          (Some (net, b, x + b.width))
          rest
    in
    let width, items, rows, enclosed =
      place 0 [] [] 0 None children
    in
    let height =
      List.fold_left (fun a (_, b) -> max a b.height) 0 children
    in
    { width; height; items; rows; enclosed_gates = enclosed }
  (* Merge rows that touch the bare junction: the left segment's rightmost
     row and the right child's leftmost row become one. *)
  and merge_boundary_rows left_rows right_rows ~left_x =
    let boundary = left_x - sp in
    let touching, others =
      List.partition (fun (r : Geom.Rect.t) -> r.Geom.Rect.x1 = boundary) left_rows
    in
    let entering, rest =
      List.partition (fun (r : Geom.Rect.t) -> r.Geom.Rect.x0 = left_x) right_rows
    in
    match (touching, entering) with
    | [ a ], [ b ] ->
      let merged =
        Geom.Rect.make ~x0:a.Geom.Rect.x0
          ~y0:(min a.Geom.Rect.y0 b.Geom.Rect.y0)
          ~x1:b.Geom.Rect.x1
          ~y1:(min a.Geom.Rect.y1 b.Geom.Rect.y1)
      in
      (merged :: others) @ rest
    | _ -> left_rows @ right_rows
  (* Parallel: stack branches bottom-up, isolated by etched (or bare)
     strips; branch rows extend to the shared stack width. *)
  and parallel children =
    let stack_w =
      List.fold_left (fun a (_, b) -> max a b.width) 0 children
    in
    let n = List.length children in
    let rec stack y acc_items acc_rows enclosed i = function
      | [] -> (y - r.Pdk.Rules.etch_len, acc_items, acc_rows, enclosed)
      | (net, b) :: rest ->
        let placed = translate_block ~dx:0 ~dy:y b in
        let rows =
          extend_rows_right ~to_x:stack_w placed.rows ~boundary:b.width
        in
        let sep_items =
          if i < n - 1 then
            match isolation with
            | Etched ->
              [ {
                  Fabric.rect =
                    Geom.Rect.of_size ~x:0 ~y:(y + b.height) ~w:stack_w
                      ~h:r.Pdk.Rules.etch_len;
                  elem = Fabric.Etch;
                } ]
            | Bare -> []
          else []
        in
        let enclosed' =
          if i > 0 && i < n - 1 then enclosed + count_gates net else enclosed
        in
        stack
          (y + b.height + r.Pdk.Rules.etch_len)
          (acc_items @ placed.items @ sep_items)
          (acc_rows @ rows) enclosed' (i + 1) rest
    in
    let height, items, rows, enclosed = stack 0 [] [] 0 0 children in
    {
      width = stack_w;
      height;
      items;
      rows;
      enclosed_gates =
        enclosed + List.fold_left (fun a (_, b) -> a + b.enclosed_gates) 0 children;
    }
  in
  let body = build net in
  (* wrap with the power and output contact columns *)
  let power =
    match polarity with
    | Logic.Network.P_type -> Logic.Switch_graph.Vdd
    | Logic.Network.N_type -> Logic.Switch_graph.Gnd
  in
  let left =
    {
      Fabric.rect = Geom.Rect.of_size ~x:0 ~y:0 ~w:lc ~h:body.height;
      elem = Fabric.Contact power;
    }
  in
  let bx = lc + sp in
  let body = translate_block ~dx:bx ~dy:0 body in
  let right_x = bx + body.width + sp in
  let right =
    {
      Fabric.rect = Geom.Rect.of_size ~x:right_x ~y:0 ~w:lc ~h:body.height;
      elem = Fabric.Contact Logic.Switch_graph.Out;
    }
  in
  let rows =
    body.rows
    |> extend_rows_left ~to_x:0 ~boundary:bx
    |> extend_rows_right ~to_x:(right_x + lc) ~boundary:(bx + body.width)
  in
  let via_overhead =
    match isolation with
    | Etched -> body.enclosed_gates * r.Pdk.Rules.via_pad_area
    | Bare -> 0
  in
  (* Contacts only as tall as the CNT rows they collect: a full-height
     contact next to a short segment would open a corridor a stray CNT
     could use to reach it without crossing the segment's gate. *)
  let resize_contact (p : Fabric.placed) =
    match p.Fabric.elem with
    | Fabric.Gate _ | Fabric.Etch -> p
    | Fabric.Contact _ ->
      let c = p.Fabric.rect in
      let touching =
        List.filter
          (fun (row : Geom.Rect.t) ->
            row.Geom.Rect.x0 < c.Geom.Rect.x1
            && row.Geom.Rect.x1 > c.Geom.Rect.x0)
          rows
      in
      (match touching with
      | [] -> p
      | _ ->
        let y0 =
          List.fold_left
            (fun a (row : Geom.Rect.t) -> min a row.Geom.Rect.y0)
            max_int touching
        and y1 =
          List.fold_left
            (fun a (row : Geom.Rect.t) -> max a row.Geom.Rect.y1)
            min_int touching
        in
        {
          p with
          Fabric.rect =
            Geom.Rect.make ~x0:c.Geom.Rect.x0 ~y0 ~x1:c.Geom.Rect.x1 ~y1;
        })
  in
  let items =
    List.map resize_contact ((left :: body.items) @ [ right ])
  in
  (* Etch every part of the region not covered by CNT rows or elements:
     uncovered active (e.g. above a short segment next to a tall contact)
     is a corridor slanted stray CNTs could use.  "Etching the small region
     fits within the cell boundary etching step" [6]. *)
  let items =
    match isolation with
    | Bare -> items
    | Etched ->
      let cover =
        Geom.Region.of_rects
          (rows @ List.map (fun (p : Fabric.placed) -> p.Fabric.rect) items)
      in
      let bbox = Geom.Region.bbox cover in
      let extra =
        Geom.Region.complement_rects ~within:bbox cover
        |> List.filter (fun r -> not (Geom.Rect.is_empty r))
        |> List.map (fun rect -> { Fabric.rect; elem = Fabric.Etch })
      in
      items @ extra
  in
  Fabric.make ~polarity ~via_overhead ~rows items

let strip ~rules ~polarity ~widths ~isolation net =
  match
    List.find_opt (fun ((_ : string), w) -> w <= 0) widths
  with
  | Some (g, w) ->
    Core.Diag.failf ~stage:"immune_old"
      ~context:[ ("device", g); ("width", string_of_int w) ]
      "device width must be positive, got %d for %s" w g
  | None -> (
    try Ok (strip_unsafe ~rules ~polarity ~widths ~isolation net)
    with exn ->
      Core.Diag.failf ~stage:"immune_old" "strip construction failed: %s"
        (Printexc.to_string exn))
