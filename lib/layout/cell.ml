type style = Immune_new | Immune_old | Vulnerable | Cmos
type scheme = Scheme1 | Scheme2

type t = {
  name : string;
  fn : Logic.Cell_fun.t;
  style : style;
  scheme : scheme;
  rules : Pdk.Rules.t;
  drive : int;
  pun : Fabric.t;
  pdn : Fabric.t;
  width : int;
  height : int;
}

let fabric_of ~rules ~style ~polarity ~widths net =
  match style with
  | Immune_new | Cmos -> Immune_new.strip ~rules ~polarity ~widths net
  | Immune_old ->
    Immune_old.strip ~rules ~polarity ~widths ~isolation:Immune_old.Etched net
  | Vulnerable ->
    Immune_old.strip ~rules ~polarity ~widths ~isolation:Immune_old.Bare net

let ( let* ) = Result.bind

let make ~rules ~fn ~style ~scheme ~drive =
  let stage = "cell" in
  let* () =
    if drive >= 1 then Ok ()
    else
      Core.Diag.failf ~stage
        ~context:
          [ ("cell", fn.Logic.Cell_fun.name); ("drive", string_of_int drive) ]
        "drive must be >= 1, got %d" drive
  in
  let r : Pdk.Rules.t = rules in
  let core = fn.Logic.Cell_fun.core in
  let pdn_net = Logic.Network.of_expr core in
  let pun_net = Logic.Network.dual pdn_net in
  let nbase = drive in
  let pbase =
    match style with
    | Cmos ->
      int_of_float
        (Float.round (float_of_int drive *. r.Pdk.Rules.cmos_pn_ratio))
    | Immune_new | Immune_old | Vulnerable -> drive
  in
  let pdn_w = Sizing.widths ~base:nbase pdn_net in
  let pun_w = Sizing.widths ~base:pbase pun_net in
  let relabel d =
    Core.Diag.with_context [ ("cell", fn.Logic.Cell_fun.name) ] d
  in
  let* pdn =
    Result.map_error relabel
      (fabric_of ~rules ~style ~polarity:Logic.Network.N_type ~widths:pdn_w
         pdn_net)
  in
  let* pun =
    Result.map_error relabel
      (fabric_of ~rules ~style ~polarity:Logic.Network.P_type ~widths:pun_w
         pun_net)
  in
  let sep =
    match style with
    | Cmos -> r.Pdk.Rules.cmos_pun_pdn_sep
    | Immune_new | Immune_old | Vulnerable -> r.Pdk.Rules.cnfet_pun_pdn_sep
  in
  let pun, pdn, width, height =
    match scheme with
    | Scheme1 ->
      (* PDN at the bottom, PUN on top, separated by the routing channel *)
      let pdn = Fabric.translate ~dx:0 ~dy:0 pdn in
      let pun = Fabric.translate ~dx:0 ~dy:(Fabric.height pdn + sep) pun in
      let width = max (Fabric.width pun) (Fabric.width pdn) in
      let height = Fabric.height pdn + sep + Fabric.height pun in
      (pun, pdn, width, height)
    | Scheme2 ->
      (* PUN and PDN side by side *)
      let pun = Fabric.translate ~dx:0 ~dy:0 pun in
      let pdn = Fabric.translate ~dx:(Fabric.width pun + sep) ~dy:0 pdn in
      let width = Fabric.width pun + sep + Fabric.width pdn in
      let height = max (Fabric.height pun) (Fabric.height pdn) in
      (pun, pdn, width, height)
  in
  let name =
    Printf.sprintf "%s_%dX_%s" fn.Logic.Cell_fun.name drive
      (match style with
      | Immune_new -> "new"
      | Immune_old -> "old"
      | Vulnerable -> "vuln"
      | Cmos -> "cmos")
  in
  Ok { name; fn; style; scheme; rules; drive; pun; pdn; width; height }

let make_exn ~rules ~fn ~style ~scheme ~drive =
  Core.Diag.ok_exn (make ~rules ~fn ~style ~scheme ~drive)

let active_area t = Fabric.area t.pun + Fabric.area t.pdn
let footprint_area t = t.width * t.height

let pins t =
  let names = Logic.Expr.inputs t.fn.Logic.Cell_fun.core in
  let channel_y =
    match t.scheme with
    | Scheme1 -> Geom.Rect.(t.pdn.Fabric.bbox.y1) + 1
    | Scheme2 -> t.height + 1
  in
  let gate_x name =
    let all = Fabric.gates t.pun @ Fabric.gates t.pdn in
    match List.find_opt (fun (g, _) -> g = name) all with
    | Some (_, r) -> r.Geom.Rect.x0
    | None -> 0
  in
  List.map
    (fun n ->
      (n, Geom.Rect.of_size ~x:(gate_x n) ~y:channel_y ~w:2 ~h:2))
    names

(* Internal node ids are private to each fabric; PDN internals are offset
   so merging the two fabrics into one graph cannot capture nodes. *)
let pdn_internal_offset = 10_000

let offset_edge off (e : Logic.Switch_graph.edge) =
  let fix = function
    | Logic.Switch_graph.Internal i -> Logic.Switch_graph.Internal (i + off)
    | (Logic.Switch_graph.Vdd | Logic.Switch_graph.Gnd
      | Logic.Switch_graph.Out) as n -> n
  in
  { e with Logic.Switch_graph.src = fix e.src; dst = fix e.dst }

let reference_truth t =
  Logic.Truth.of_expr (Logic.Expr.Not t.fn.Logic.Cell_fun.core)

(* The nominal row edges, the input list and the reference table do not
   change between fault-injection trials; [prepared] derives them once so
   campaigns only pay per trial for the stray edges themselves.  The value
   is immutable and safe to share read-only across domains. *)
type prepared = {
  base_edges : Logic.Switch_graph.edge list;  (* offsets already applied *)
  inputs : string list;
  reference : Logic.Truth.t;
}

let prepare t =
  {
    base_edges =
      Logic.Switch_graph.edges (Fabric.switch_graph_of_rows t.pun)
      @ List.map
          (offset_edge pdn_internal_offset)
          (Logic.Switch_graph.edges (Fabric.switch_graph_of_rows t.pdn));
    inputs = Logic.Expr.inputs t.fn.Logic.Cell_fun.core;
    reference = reference_truth t;
  }

let prepared_reference p = p.reference
let prepared_inputs p = p.inputs

let graph_of_prepared p ~pun_extra ~pdn_extra =
  let graph = Logic.Switch_graph.create () in
  List.iter (Logic.Switch_graph.add_edge graph) p.base_edges;
  List.iter (fun e -> Logic.Switch_graph.add_edge graph e) pun_extra;
  List.iter
    (fun e ->
      Logic.Switch_graph.add_edge graph (offset_edge pdn_internal_offset e))
    pdn_extra;
  graph

let truth_of_prepared p ~pun_extra ~pdn_extra =
  Logic.Switch_graph.truth_table
    (graph_of_prepared p ~pun_extra ~pdn_extra)
    ~inputs:p.inputs

let drives_of_prepared p ~pun_extra ~pdn_extra =
  Logic.Switch_graph.drive_table
    (graph_of_prepared p ~pun_extra ~pdn_extra)
    ~inputs:p.inputs

let graph_with t ~pun_extra ~pdn_extra =
  graph_of_prepared (prepare t) ~pun_extra ~pdn_extra

let truth_with t ~pun_extra ~pdn_extra =
  truth_of_prepared (prepare t) ~pun_extra ~pdn_extra

let check_function t =
  if Logic.Truth.equal (truth_with t ~pun_extra:[] ~pdn_extra:[]) (reference_truth t)
  then Ok ()
  else
    Error
      (Format.asprintf "cell %s deviates from %s" t.name
         (Logic.Expr.to_string
            (Logic.Expr.Not t.fn.Logic.Cell_fun.core)))

let layers t =
  let r = t.rules in
  let fabric_layers polarity_layer (f : Fabric.t) =
    [
      (Pdk.Layer.Cnt_plane, Geom.Region.of_rects f.Fabric.rows);
      (polarity_layer, Geom.Region.of_rects f.Fabric.rows);
      ( Pdk.Layer.Gate,
        Geom.Region.of_rects (List.map snd (Fabric.gates f)) );
      ( Pdk.Layer.Contact,
        Geom.Region.of_rects (List.map snd (Fabric.contacts f)) );
      (Pdk.Layer.Etch, Geom.Region.of_rects (Fabric.etches f));
    ]
  in
  let rails =
    let w = t.width in
    let h = r.Pdk.Rules.rail_height in
    Geom.Region.of_rects
      [
        Geom.Rect.of_size ~x:0 ~y:(-h - r.Pdk.Rules.cell_margin) ~w ~h;
        Geom.Rect.of_size ~x:0 ~y:(t.height + r.Pdk.Rules.cell_margin) ~w ~h;
      ]
  in
  let boundary =
    Geom.Region.of_rect
      (Geom.Rect.make
         ~x0:(-r.Pdk.Rules.cell_margin)
         ~y0:(-(2 * r.Pdk.Rules.rail_height) - r.Pdk.Rules.cell_margin)
         ~x1:(t.width + r.Pdk.Rules.cell_margin)
         ~y1:(t.height + (2 * r.Pdk.Rules.rail_height) + r.Pdk.Rules.cell_margin))
  in
  let pin_region =
    Geom.Region.of_rects (List.map snd (pins t))
  in
  let merge assoc =
    List.fold_left
      (fun acc (l, rg) ->
        match List.assoc_opt l acc with
        | Some prev ->
          (l, Geom.Region.union prev rg) :: List.remove_assoc l acc
        | None -> (l, rg) :: acc)
      [] assoc
  in
  merge
    (fabric_layers Pdk.Layer.Pdoping t.pun
    @ fabric_layers Pdk.Layer.Ndoping t.pdn
    @ [
        (Pdk.Layer.Metal1, rails);
        (Pdk.Layer.Boundary, boundary);
        (Pdk.Layer.Pin, pin_region);
      ])
  |> List.filter (fun (_, rg) -> not (Geom.Region.is_empty rg))
  |> List.sort (fun (a, _) (b, _) ->
         Stdlib.compare (Pdk.Layer.gds_number a) (Pdk.Layer.gds_number b))
