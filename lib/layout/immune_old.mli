(** Etched-region misaligned-CNT-immune layouts in the style of Patil et
    al. (DAC'07), the baseline the paper's Table 1 compares against.

    Parallel branches are stacked as separate CNT rows between shared metal
    contact columns, with etched-CNT strips isolating adjacent rows so a
    stray CNT cannot drift between branches.  Gates of enclosed rows
    (neither top nor bottom of a stack) need vertical-gating vias for their
    intra-cell poly connection; each is charged a fixed landing-pad area
    from the rules ([via_pad_area]), since the via (3 lambda) exceeds the
    gate length (2 lambda). *)

type isolation =
  | Etched  (** old immune layouts: etched strips between stacked rows *)
  | Bare
      (** the misaligned-CNT-*vulnerable* baseline of Fig. 2(b): rows are
          stacked with plain spacing, leaving open corridors *)

val strip : rules:Pdk.Rules.t -> polarity:Logic.Network.polarity
  -> widths:(string * int) list -> isolation:isolation -> Logic.Network.t
  -> (Fabric.t, Core.Diag.t) result
(** Stacked-row layout of one network.  A non-positive device width is
    rejected with a [Diag] error. *)
