(** ASCII rendering of fabrics and cells (one character per lambda), used by
    the examples to reproduce the paper's layout figures in the terminal.

    Legend: ['#'] contact metal, letters = poly gates (uppercase initial of
    the input), ['='] etched region, ['.'] CNT active rows, [' '] empty. *)

val fabric : Fabric.t -> string
val cell : Cell.t -> string
(** The cell rendered top-down (PUN above PDN for scheme 1). *)
