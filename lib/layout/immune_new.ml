let node_of_terminal ~polarity (t : Euler.Net_graph.t) n =
  match Euler.Net_graph.terminal_of_node t n with
  | Euler.Net_graph.Power -> (
    match polarity with
    | Logic.Network.P_type -> Logic.Switch_graph.Vdd
    | Logic.Network.N_type -> Logic.Switch_graph.Gnd)
  | Euler.Net_graph.Output -> Logic.Switch_graph.Out
  | Euler.Net_graph.Junction i -> Logic.Switch_graph.Internal i

(* A junction contact can be omitted (bare shared diffusion between two
   series gates) when the junction occurs exactly once across all trails,
   in an interior position. *)
let bare_junctions (ng : Euler.Net_graph.t) trails =
  let occur = Hashtbl.create 8 in
  let note n interior =
    let count, all_interior =
      try Hashtbl.find occur n with Not_found -> (0, true)
    in
    Hashtbl.replace occur n (count + 1, all_interior && interior)
  in
  List.iter
    (fun trail ->
      let len = List.length trail in
      List.iteri
        (fun i (s : Euler.Trail.step) ->
          note s.Euler.Trail.node (i > 0 && i < len - 1))
        trail)
    trails;
  fun n ->
    match Euler.Net_graph.terminal_of_node ng n with
    | Euler.Net_graph.Power | Euler.Net_graph.Output -> false
    | Euler.Net_graph.Junction _ -> (
      match Hashtbl.find_opt occur n with
      | Some (1, true) -> true
      | Some _ | None -> false)

(* Abstract column sequence of the strip. *)
type column =
  | Ccol of Logic.Switch_graph.node
  | Gcol of string * int  (* input, drawn width *)
  | Ecol  (* isolation between trail breaks *)

let columns_of_trails ~polarity ~widths ~default_h ng trails =
  let bare = bare_junctions ng trails in
  let gate_h name =
    match List.assoc_opt name widths with Some w -> w | None -> default_h
  in
  let of_trail trail =
    List.concat_map
      (fun (s : Euler.Trail.step) ->
        let gate =
          match s.Euler.Trail.via with
          | Some id ->
            let e = Euler.Multigraph.edge ng.Euler.Net_graph.graph id in
            let name = e.Euler.Multigraph.label in
            [ Gcol (name, gate_h name) ]
          | None -> []
        in
        let contact =
          if bare s.Euler.Trail.node then []
          else [ Ccol (node_of_terminal ~polarity ng s.Euler.Trail.node) ]
        in
        gate @ contact)
      trail
  in
  (* trail breaks are isolated with an etched column so the two unrelated
     duplicated contacts cannot be bridged by a stray CNT *)
  let rec join = function
    | [] -> []
    | [ t ] -> of_trail t
    | t :: rest -> of_trail t @ (Ecol :: join rest)
  in
  join trails

let strip_of_graph_unsafe ?(uniform = true) ~rules ~polarity ~widths ng =
  let r : Pdk.Rules.t = rules in
  let sp = r.Pdk.Rules.gate_contact_sp in
  let default_h = max r.Pdk.Rules.min_width (Sizing.strip_width widths) in
  let widths =
    (* Uniform strips draw every device at the tallest width: a height step
       at a contact would let a slightly slanted stray CNT slip past the
       shorter gate and still land on both neighbouring contacts.  The
       bounding-box area is unchanged; only drive improves. *)
    if uniform then List.map (fun (g, _) -> (g, default_h)) widths
    else widths
  in
  let trails = Euler.Net_graph.strips ng in
  let cols = columns_of_trails ~polarity ~widths ~default_h ng trails in
  (* x placement *)
  let placed, total_w =
    let rec go x acc = function
      | [] -> (List.rev acc, max 0 (x - sp))
      | c :: rest ->
        let len =
          match c with
          | Ccol _ -> r.Pdk.Rules.contact_len
          | Gcol _ -> r.Pdk.Rules.gate_len
          | Ecol -> r.Pdk.Rules.etch_len
        in
        go (x + len + sp) ((c, x, len) :: acc) rest
    in
    go 0 [] cols
  in
  ignore total_w;
  (* CNT rows: one per contact-to-contact span holding at least one gate;
     the row height is the span's tallest device *)
  let rows =
    let rec spans acc current = function
      | [] -> List.rev acc
      | ((Ccol _, x, len) as c) :: rest -> (
        match current with
        | None -> spans acc (Some (c, [])) rest
        | Some ((_, x0, _), gates) ->
          let acc =
            if gates = [] then acc
            else
              let h = List.fold_left max 0 gates in
              Geom.Rect.make ~x0 ~y0:0 ~x1:(x + len) ~y1:h :: acc
          in
          spans acc (Some (c, [])) rest)
      | (Gcol (_, h), _, _) :: rest -> (
        match current with
        | None -> spans acc None rest
        | Some (c0, gates) -> spans acc (Some (c0, h :: gates)) rest)
      | (Ecol, _, _) :: rest -> spans acc None rest
    in
    spans [] None placed
  in
  (* contact heights adapt to the rows they collect *)
  let contact_height x len =
    let touching =
      List.filter
        (fun (row : Geom.Rect.t) ->
          row.Geom.Rect.x0 <= x && row.Geom.Rect.x1 >= x + len)
        rows
    in
    match touching with
    | [] -> default_h
    | _ -> List.fold_left (fun a (row : Geom.Rect.t) -> max a row.Geom.Rect.y1) 0 touching
  in
  let items =
    List.map
      (fun (c, x, len) ->
        match c with
        | Ccol n ->
          {
            Fabric.rect = Geom.Rect.of_size ~x ~y:0 ~w:len ~h:(contact_height x len);
            elem = Fabric.Contact n;
          }
        | Gcol (g, h) ->
          {
            Fabric.rect = Geom.Rect.of_size ~x ~y:0 ~w:len ~h;
            elem = Fabric.Gate g;
          }
        | Ecol ->
          {
            Fabric.rect = Geom.Rect.of_size ~x ~y:0 ~w:len ~h:default_h;
            elem = Fabric.Etch;
          })
      placed
  in
  Fabric.make ~polarity ~rows items

let check_widths ~stage widths =
  match List.find_opt (fun (_, w) -> w <= 0) widths with
  | Some (g, w) ->
    Core.Diag.failf ~stage
      ~context:[ ("device", g); ("width", string_of_int w) ]
      "device width must be positive, got %d for %s" w g
  | None -> Ok ()

let strip_of_graph ?uniform ~rules ~polarity ~widths ng =
  match check_widths ~stage:"immune_new" widths with
  | Error _ as e -> e
  | Ok () -> (
    try Ok (strip_of_graph_unsafe ?uniform ~rules ~polarity ~widths ng)
    with exn ->
      Core.Diag.failf ~stage:"immune_new" "strip construction failed: %s"
        (Printexc.to_string exn))

let strip ?uniform ~rules ~polarity ~widths net =
  strip_of_graph ?uniform ~rules ~polarity ~widths
    (Euler.Net_graph.of_network net)
