(** Resistance-balanced transistor sizing.

    Every conduction path through a network should present the same
    resistance as a single transistor of the base width, so a device on a
    path of [k] series devices is drawn [k] times wider (the paper:
    "n-CNFETs are three times bigger than the p-CNFETs for a NAND3 cell").
    Widths are in lambda. *)

val path_length : Logic.Network.t -> string -> int
(** Number of series devices on the conduction path through the named
    device (its own path, not the network's worst path).
    @raise Not_found when the input gates no device. *)

val widths : base:int -> Logic.Network.t -> (string * int) list
(** Width per input name, [base * path_length]; when the same input gates
    several devices the widest is kept.  The list covers every input. *)

val lookup : (string * int) list -> string -> int
(** Width of an input. @raise Not_found. *)

val strip_width : (string * int) list -> int
(** The tallest device — the strip height of a single-row layout. *)
