let blit grid ~x0 ~y0 (r : Geom.Rect.t) c =
  let h = Array.length grid in
  for y = r.Geom.Rect.y0 - y0 to r.Geom.Rect.y1 - y0 - 1 do
    for x = r.Geom.Rect.x0 - x0 to r.Geom.Rect.x1 - x0 - 1 do
      if y >= 0 && y < h && x >= 0 && x < String.length (Bytes.to_string grid.(0))
      then Bytes.set grid.(y) x c
    done
  done

let draw_items grid ~x0 ~y0 (f : Fabric.t) =
  List.iter (fun r -> blit grid ~x0 ~y0 r '.') f.Fabric.rows;
  List.iter
    (fun (p : Fabric.placed) ->
      let c =
        match p.Fabric.elem with
        | Fabric.Contact _ -> '#'
        | Fabric.Gate g -> if g = "" then 'G' else g.[0]
        | Fabric.Etch -> '='
      in
      blit grid ~x0 ~y0 p.Fabric.rect c)
    f.Fabric.items

let grid_of ~width ~height = Array.init height (fun _ -> Bytes.make width ' ')

let to_string grid =
  (* rows are stored bottom-up; print top-down *)
  Array.to_list grid |> List.rev_map Bytes.to_string |> String.concat "\n"

let fabric (f : Fabric.t) =
  let b = f.Fabric.bbox in
  let width = Geom.Rect.width b and height = Geom.Rect.height b in
  if width = 0 || height = 0 then ""
  else begin
    let grid = grid_of ~width ~height in
    draw_items grid ~x0:b.Geom.Rect.x0 ~y0:b.Geom.Rect.y0 f;
    to_string grid
  end

let cell (c : Cell.t) =
  if c.Cell.width = 0 || c.Cell.height = 0 then ""
  else begin
    let grid = grid_of ~width:c.Cell.width ~height:c.Cell.height in
    draw_items grid ~x0:0 ~y0:0 c.Cell.pun;
    draw_items grid ~x0:0 ~y0:0 c.Cell.pdn;
    to_string grid
  end
