(* For every leaf, the length of its conduction path: inside a series
   composition the lengths of the legs add; parallel branches keep their own
   lengths. *)
let rec leaf_paths = function
  | Logic.Network.Device g -> [ (g, 1) ]
  | Logic.Network.Parallel ns -> List.concat_map leaf_paths ns
  | Logic.Network.Series ns ->
    let per_leg = List.map leaf_paths ns in
    (* a path through the series traverses the best (shortest) realization
       of every other leg; the standard sizing convention instead charges
       each leaf the sum of the minimum depths of the sibling legs plus its
       own in-leg depth *)
    let min_depth leg =
      List.fold_left (fun acc (_, d) -> min acc d) max_int leg
    in
    let total_min = List.fold_left (fun a leg -> a + min_depth leg) 0 per_leg in
    List.concat_map
      (fun leg ->
        let others = total_min - min_depth leg in
        List.map (fun (g, d) -> (g, d + others)) leg)
      per_leg

let path_length net name =
  match List.assoc_opt name (leaf_paths net) with
  | Some d -> d
  | None -> raise Not_found

let widths ~base net =
  let merge acc (g, d) =
    let w = base * d in
    match List.assoc_opt g acc with
    | Some w' -> (g, max w w') :: List.remove_assoc g acc
    | None -> (g, w) :: acc
  in
  List.fold_left merge [] (leaf_paths net) |> List.rev

let lookup tbl g =
  match List.assoc_opt g tbl with
  | Some w -> w
  | None -> raise Not_found

let strip_width tbl = List.fold_left (fun acc (_, w) -> max acc w) 0 tbl
