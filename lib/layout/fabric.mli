(** Placed active-region fabric of one transistor network (PUN or PDN).

    A fabric is the geometric content of one network region: metal contact
    columns, poly gate columns, etched strips, laid out over the CNT plane.
    Both the new Euler-strip layouts and the old stacked-row layouts reduce
    to this representation, which is what the area accounting, the GDSII
    export and the misposition fault simulator consume. *)

type element =
  | Contact of Logic.Switch_graph.node  (** metal contact column *)
  | Gate of string  (** poly gate column controlled by the named input *)
  | Etch  (** etched-CNT isolation strip (old-style layouts) *)

type placed = { rect : Geom.Rect.t; elem : element }

type t = {
  polarity : Logic.Network.polarity;
  items : placed list;
  bbox : Geom.Rect.t;
  rows : Geom.Rect.t list;
      (** CNT-carrying horizontal bands; nominal (well-positioned) CNTs run
          the full width of a row *)
  via_overhead : int;
      (** fixed extra metal area in lambda^2 charged for vertical-gating
          vias (zero for new-style layouts) *)
}

val make : polarity:Logic.Network.polarity -> ?via_overhead:int
  -> rows:Geom.Rect.t list -> placed list -> t
(** Compute the bounding box from the items. *)

val translate : dx:int -> dy:int -> t -> t

val area : t -> int
(** Active area: bounding-box area of the network region plus the
    vertical-gating overhead.  This is the quantity Table 1 compares. *)

val width : t -> int
val height : t -> int

val contacts : t -> (Logic.Switch_graph.node * Geom.Rect.t) list
val gates : t -> (string * Geom.Rect.t) list
val etches : t -> Geom.Rect.t list

val inputs : t -> string list
(** Distinct gate input names, sorted. *)

val switch_graph_of_rows : t -> Logic.Switch_graph.t
(** Conduction graph implied by *nominal* CNTs: for every row, tracks run
    the full row and conduct between consecutive contact columns gated by
    the gate columns in between (cut at etched strips).  This is the
    intended function of the fabric and must match the cell's network. *)

val pp : Format.formatter -> t -> unit
