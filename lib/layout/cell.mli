(** Complete standard cells: a PUN and a PDN fabric assembled under one of
    the paper's two layout schemes.

    Scheme 1 stacks the PUN above the PDN with a routing channel between
    them (CMOS-like; channel width set by the input-pin size, 6 lambda,
    instead of the 10 lambda n-to-p diffusion spacing of CMOS).  Scheme 2
    places the PUN and the PDN side by side, shrinking the cell height —
    the novel CNFET-specific arrangement of Section IV. *)

type style =
  | Immune_new  (** the paper's compact Euler-strip layouts *)
  | Immune_old  (** etched-region layouts of Patil et al. [6] *)
  | Vulnerable  (** no isolation: Fig. 2(b) baseline *)
  | Cmos  (** reference CMOS cell under 65nm rules *)

type scheme = Scheme1 | Scheme2

type t = {
  name : string;
  fn : Logic.Cell_fun.t;
  style : style;
  scheme : scheme;
  rules : Pdk.Rules.t;
  drive : int;  (** base transistor width in lambda *)
  pun : Fabric.t;  (** placed in cell coordinates *)
  pdn : Fabric.t;
  width : int;
  height : int;
}

val make : rules:Pdk.Rules.t -> fn:Logic.Cell_fun.t -> style:style
  -> scheme:scheme -> drive:int -> (t, Core.Diag.t) result
(** Build the cell.  [drive] is the base (unit-path) transistor width in
    lambda and must be at least 1; series paths are widened per
    {!Sizing.widths}.  CMOS cells draw pMOS [cmos_pn_ratio] times wider
    than nMOS and use the CMOS PUN/PDN separation.  Errors (invalid drive,
    fabric construction failures) arrive as [Diag] values. *)

val make_exn : rules:Pdk.Rules.t -> fn:Logic.Cell_fun.t -> style:style
  -> scheme:scheme -> drive:int -> t
(** {!make}, raising [Core.Diag.Failure] on error.  Thin shim for the CLI
    boundary, tests and benches. *)

val active_area : t -> int
(** PUN + PDN active area including via overheads — the Table 1 metric. *)

val footprint_area : t -> int
(** Cell footprint: width times height of the assembled cell (active bands
    plus the inter-network channel) — the case-study area metric. *)

val pins : t -> (string * Geom.Rect.t) list
(** Input pin markers, one per input, in the routing channel. *)

val graph_with : t -> pun_extra:Logic.Switch_graph.edge list
  -> pdn_extra:Logic.Switch_graph.edge list -> Logic.Switch_graph.t
(** Conduction graph of the cell: nominal CNT rows of both fabrics plus
    extra (stray-CNT) edges per network region.  Internal nodes of the two
    fabrics live in disjoint namespaces. *)

val truth_with : t -> pun_extra:Logic.Switch_graph.edge list
  -> pdn_extra:Logic.Switch_graph.edge list -> Logic.Truth.t
(** Tabulated output of {!graph_with} over the cell inputs. *)

val reference_truth : t -> Logic.Truth.t
(** The intended function [Not core]. *)

type prepared
(** Per-cell state that is invariant across fault-injection trials: the
    nominal row edges of both fabrics (internal namespaces already made
    disjoint), the input list and the reference truth table.  Immutable,
    hence safe to share read-only across domains. *)

val prepare : t -> prepared

val prepared_reference : prepared -> Logic.Truth.t
(** Cached {!reference_truth}. *)

val prepared_inputs : prepared -> string list
(** Input names of the cell, in {!Logic.Truth} row order. *)

val truth_of_prepared : prepared -> pun_extra:Logic.Switch_graph.edge list
  -> pdn_extra:Logic.Switch_graph.edge list -> Logic.Truth.t
(** {!truth_with} against the cached nominal edges: equal output for equal
    input, without rebuilding the row graphs. *)

val drives_of_prepared : prepared -> pun_extra:Logic.Switch_graph.edge list
  -> pdn_extra:Logic.Switch_graph.edge list
  -> Logic.Switch_graph.drive array
(** {!Logic.Switch_graph.drive_table} of the corrupted graph over
    {!prepared_inputs} — like {!truth_of_prepared} but keeping rail fights
    and floating outputs apart, which is what fault diagnosis classifies
    on. *)

val check_function : t -> (unit, string) result
(** Verify that nominal CNT rows of both fabrics realize the intended cell
    function (switch-level, exhaustive over input assignments). *)

val layers : t -> (Pdk.Layer.t * Geom.Region.t) list
(** Geometry per layer for GDSII export. *)
