(** Design-rule checking of generated fabrics and cells.

    The paper's claim that the new layouts can be "built respecting the
    design rules of commercially available technologies" is checked
    mechanically: minimum feature widths, gate/contact spacing, etched
    region size, and non-overlap of distinct elements. *)

type violation = {
  rule : string;
  detail : string;
  where : Geom.Rect.t;
}

val check_fabric : rules:Pdk.Rules.t -> Fabric.t -> violation list
(** Empty list means clean.  When {!Telemetry.enabled}, bumps
    [drc.fabrics_checked] and one [drc.violations.<rule>] counter per
    violation found. *)

val check_cell : Cell.t -> violation list
(** Both fabrics plus the inter-network separation rule (6 lambda for
    CNFET schemes, 10 lambda for CMOS, scheme-dependent direction).
    Telemetry: [drc.cells_checked] plus the per-rule violation counters
    of {!check_fabric}. *)

val check_outlines : (string * Geom.Rect.t) list -> violation list
(** Placement-level DRC over named cell outlines: any two outlines with a
    positive-area intersection raise a [placement.overlap] violation.
    Near-linear in the instance count via {!Geom.Index}; pairs are
    reported in ascending (i, j) placement order, identical to
    {!check_outlines_naive}.  Telemetry: [drc.placements_checked] plus
    the per-rule violation counters. *)

val check_outlines_naive : (string * Geom.Rect.t) list -> violation list
(** All-pairs reference for {!check_outlines}; equal output for equal
    input (scale-bench and property-test baseline). *)

val pp_violation : Format.formatter -> violation -> unit
