type element =
  | Contact of Logic.Switch_graph.node
  | Gate of string
  | Etch

type placed = { rect : Geom.Rect.t; elem : element }

type t = {
  polarity : Logic.Network.polarity;
  items : placed list;
  bbox : Geom.Rect.t;
  rows : Geom.Rect.t list;
  via_overhead : int;
}

let make ~polarity ?(via_overhead = 0) ~rows items =
  let bbox =
    Geom.Rect.bbox_of_list (List.map (fun p -> p.rect) items @ rows)
  in
  { polarity; items; bbox; rows; via_overhead }

let translate ~dx ~dy t =
  {
    t with
    items =
      List.map
        (fun p -> { p with rect = Geom.Rect.translate ~dx ~dy p.rect })
        t.items;
    bbox = Geom.Rect.translate ~dx ~dy t.bbox;
    rows = List.map (Geom.Rect.translate ~dx ~dy) t.rows;
  }

let area t = Geom.Rect.area t.bbox + t.via_overhead
let width t = Geom.Rect.width t.bbox
let height t = Geom.Rect.height t.bbox

let contacts t =
  List.filter_map
    (fun p -> match p.elem with Contact n -> Some (n, p.rect) | Gate _ | Etch -> None)
    t.items

let gates t =
  List.filter_map
    (fun p -> match p.elem with Gate g -> Some (g, p.rect) | Contact _ | Etch -> None)
    t.items

let etches t =
  List.filter_map
    (fun p -> match p.elem with Etch -> Some p.rect | Contact _ | Gate _ -> None)
    t.items

let inputs t =
  gates t |> List.map fst |> List.sort_uniq Stdlib.compare

(* Items crossing a row band, left to right.  A column belongs to the row
   when the rectangles overlap vertically and horizontally within the row's
   x-range. *)
let row_items t row =
  t.items
  |> List.filter (fun p ->
         let r = p.rect in
         r.Geom.Rect.y0 < row.Geom.Rect.y1
         && row.Geom.Rect.y0 < r.Geom.Rect.y1
         && r.Geom.Rect.x0 < row.Geom.Rect.x1
         && row.Geom.Rect.x0 < r.Geom.Rect.x1)
  |> List.sort (fun a b ->
         Stdlib.compare a.rect.Geom.Rect.x0 b.rect.Geom.Rect.x0)

let switch_graph_of_rows t =
  let g = Logic.Switch_graph.create () in
  let add_row row =
    let step (prev, gates) p =
      match p.elem with
      | Gate name -> (prev, name :: gates)
      | Etch -> (None, [])
      | Contact n ->
        (match prev with
        | Some src ->
          Logic.Switch_graph.add_edge g
            {
              Logic.Switch_graph.src;
              dst = n;
              gates = List.rev gates;
              polarity = t.polarity;
            }
        | None -> ());
        (Some n, [])
    in
    ignore (List.fold_left step (None, []) (row_items t row))
  in
  List.iter add_row t.rows;
  g

let pp_elem ppf = function
  | Contact n ->
    let s =
      match n with
      | Logic.Switch_graph.Vdd -> "Vdd"
      | Logic.Switch_graph.Gnd -> "Gnd"
      | Logic.Switch_graph.Out -> "Out"
      | Logic.Switch_graph.Internal i -> Printf.sprintf "n%d" i
    in
    Format.fprintf ppf "C:%s" s
  | Gate g -> Format.fprintf ppf "G:%s" g
  | Etch -> Format.pp_print_string ppf "etch"

let pp ppf t =
  Format.fprintf ppf "@[<v>fabric %s bbox=%a area=%d@ "
    (match t.polarity with
    | Logic.Network.N_type -> "PDN"
    | Logic.Network.P_type -> "PUN")
    Geom.Rect.pp t.bbox (area t);
  List.iter
    (fun p -> Format.fprintf ppf "%a %a@ " pp_elem p.elem Geom.Rect.pp p.rect)
    t.items;
  Format.fprintf ppf "@]"
