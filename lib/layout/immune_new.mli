(** The paper's contribution: compact misaligned-CNT-immune layouts.

    The transistor network is turned into a contact/gate multigraph and
    decomposed into Euler trails ("drawing an Euler path from the Vdd to
    the Gnd"); each trail becomes a run of full-height vertical stripes
    [contact, gate, contact, ...] and trail breaks duplicate a contact.
    Because every stripe spans the whole strip height there is no corridor
    a mispositioned CNT can use to bypass a gate: between any two contacts
    it touches, a CNT always crosses exactly the intended series gates. *)

val strip : ?uniform:bool -> rules:Pdk.Rules.t
  -> polarity:Logic.Network.polarity -> widths:(string * int) list
  -> Logic.Network.t -> (Fabric.t, Core.Diag.t) result
(** Single-strip immune layout of one network.  [widths] gives the drawn
    width (strip height) of each input's device, typically from
    {!Sizing.widths}; a non-positive width is rejected with a [Diag]
    error.  With [uniform] (default) all devices are drawn at the strip's
    tallest width; a non-uniform strip is smaller in drawn active but
    loses immunity margin against slanted CNTs at height steps (the
    ablation benchmark quantifies this). *)

val strip_of_graph : ?uniform:bool -> rules:Pdk.Rules.t
  -> polarity:Logic.Network.polarity -> widths:(string * int) list
  -> Euler.Net_graph.t -> (Fabric.t, Core.Diag.t) result
(** Same, from a pre-built contact/gate graph (lets tests exercise custom
    graphs). *)
